// Command rtrload drives an rtrsimd daemon with a recovery-query
// workload and reports throughput and HDR-style latency percentiles.
// It regenerates the daemon's topology locally (same seed, same
// deterministic synthesis), builds a query mix of real test cases
// across a configurable number of failure instances, and fires it
// either closed-loop (each connection sends its next query as soon as
// the previous answer lands) or open-loop (queries depart on a fixed
// schedule; latency includes queueing, so a saturated server is
// visible instead of coordinated away).
//
//	rtrload -as AS7018 -duration 5s                 # closed loop, 8 conns
//	rtrload -mode open -rate 500 -scheme rtr        # open loop at 500 qps
//	rtrload -bench-json internal/perf               # append serving entries
//
// The warm-vs-cold comparison is measured in the same run and
// transport-free, so it prices the cache and nothing else: -baseline N
// times N queries of the identical mix through two in-process engines
// — one with a warm cache, one rebuilding converged state cold (full
// per-destination Dijkstra, no cache) on every query — and reports the
// warm-cache speedup as the ratio of the two. The HTTP numbers above
// them carry the daemon's end-to-end serving qps and tail latency.
// Exit status: 1 on any request error, qps below -min-qps, or warm
// speedup below -min-speedup.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failure"
	"repro/internal/perf"
	seedpkg "repro/internal/seed"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/spt"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8723", "rtrsimd address (host:port)")
		asFlag   = flag.String("as", "AS7018", "topology to load against")
		seed     = flag.Int64("seed", 1, "synthesis seed; must match the daemon's -seed")
		scheme   = flag.String("scheme", "all", "query scheme: rtr, fcp, mrc, or all")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		mode     = flag.String("mode", "closed", "closed (latency-bounded) or open (rate-bounded)")
		conns    = flag.Int("conns", 8, "concurrent connections (open mode: max in-flight)")
		rate     = flag.Float64("rate", 200, "open-loop departure rate (queries/sec)")
		failures = flag.Int("failures", 16, "distinct failure instances in the query mix")
		pairs    = flag.Int("pairs", 8, "queries (cases) per failure instance")
		batch    = flag.Int("batch", 0, "POST batches of up to N (src,dst) pairs per failure instance (0 or 1 fires single GET queries)")
		wait     = flag.Duration("wait", 30*time.Second, "max time to wait for the daemon's /healthz")
		minQPS   = flag.Float64("min-qps", 0, "exit 1 when achieved qps is below this")
		minSpeed = flag.Float64("min-speedup", 0, "exit 1 when warm-engine qps / cold baseline qps is below this (needs -baseline)")
		baseline = flag.Int("baseline", 64, "queries timed through the in-process warm-vs-cold engine pair; 0 skips")
		cacheSz  = flag.Int("cache", 64, "warm in-process engine's LRU capacity for the baseline comparison")
		phase2   = flag.String("phase2", "dijkstra", "phase-2 engine for the in-process baseline")
		benchOut = flag.String("bench-json", "", "merge serving entries into BENCH_<date>.json in this directory (or the given .json path)")
	)
	flag.Parse()
	engine, err := spt.ParseEngine(*phase2)
	if err != nil {
		die(err)
	}
	if *mode != "closed" && *mode != "open" {
		die(fmt.Errorf("unknown -mode %q (want closed or open)", *mode))
	}

	// The cold-convergence baseline engine serves double duty: its
	// world generates the query mix, and -baseline times the
	// cold-convergence-per-query cost on it.
	cold, err := serve.New(serve.Config{Topos: []string{*asFlag}, Seed: *seed, Phase2: engine, ColdConvergence: true})
	if err != nil {
		die(err)
	}
	w := cold.World(*asFlag)
	mix := buildMix(w, *asFlag, *seed, *failures, *pairs, *scheme)
	if len(mix) == 0 {
		die(fmt.Errorf("no test cases found on %s", *asFlag))
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *conns,
			MaxIdleConnsPerHost: *conns,
		},
	}
	if err := waitReady(client, base, *wait); err != nil {
		die(err)
	}
	before, err := fetchStats(client, base)
	if err != nil {
		die(err)
	}

	// -batch folds the mix into POST batches: the queries that share a
	// failure instance ride one request and one server-side cache
	// lookup. Latency is then per batch, throughput still per pair.
	fire := func(i int) bool { return doQuery(client, base, mix[i%len(mix)]) }
	perReq := 1
	if *batch > 1 {
		batches := buildBatches(mix, *batch)
		perReq = (len(mix) + len(batches) - 1) / len(batches)
		fire = func(i int) bool { return doBatch(client, base, batches[i%len(batches)]) }
	}

	var (
		hist    perf.Histogram
		total   int64
		errs    int64
		elapsed time.Duration
	)
	switch *mode {
	case "closed":
		total, errs, elapsed = runClosed(&hist, fire, *conns, *duration)
	case "open":
		total, errs, elapsed = runOpen(&hist, fire, *conns, *rate, *duration)
	}
	after, err := fetchStats(client, base)
	if err != nil {
		die(err)
	}
	hitRate := serve.HitRate(before, after)
	qps := 0.0
	if elapsed > 0 {
		qps = float64(total) / elapsed.Seconds()
	}

	fmt.Printf("rtrload: %s %s scheme=%s mode=%s conns=%d mix=%d queries/%d failures\n",
		base, *asFlag, *scheme, *mode, *conns, len(mix), *failures)
	if perReq > 1 {
		fmt.Printf("  batched: ~%d pairs per request (-batch %d), %.1f pairs/sec\n",
			perReq, *batch, qps*float64(perReq))
	}
	fmt.Printf("  %d requests in %v: %.1f qps, %d errors, cache hit rate %.1f%%\n",
		total, elapsed.Round(time.Millisecond), qps, errs, 100*hitRate)
	fmt.Printf("  latency p50 %v  p90 %v  p99 %v  p999 %v  max %v\n",
		ns(hist.Quantile(0.5)), ns(hist.Quantile(0.9)), ns(hist.Quantile(0.99)),
		ns(hist.Quantile(0.999)), ns(hist.Max()))

	name := "serve-" + *mode + "-" + *scheme
	if *batch > 1 {
		// A distinct entry name: a batched rerun must not clobber the
		// single-query serving numbers (perf.MergeFile replaces by name).
		name += fmt.Sprintf("-batch%d", *batch)
	}
	entries := []perf.Entry{{
		Name:         name,
		Topology:     *asFlag,
		NsPerOp:      int64(hist.Mean()),
		Cases:        int(total),
		CasesPerSec:  qps,
		P50Ns:        hist.Quantile(0.5),
		P99Ns:        hist.Quantile(0.99),
		CacheHitRate: hitRate,
	}}

	speedup := 0.0
	if *baseline > 0 {
		// Same mix, same process, no transport: one engine serves from
		// a warm cache, the other rebuilds converged state cold (full
		// per-destination Dijkstra) on every query. The ratio is the
		// serving layer's win, with HTTP overhead priced into neither.
		warm, err := serve.New(serve.Config{Topos: []string{*asFlag}, Seed: *seed, Phase2: engine, CacheEntries: *cacheSz})
		if err != nil {
			die(err)
		}
		for _, q := range mix { // prime the warm cache once
			if _, err := warm.Query(q); err != nil {
				die(fmt.Errorf("warm prime: %v", err))
			}
		}
		warmHist, warmQPS := timeEngine(warm, mix, *baseline)
		coldHist, coldQPS := timeEngine(cold, mix, *baseline)
		if coldQPS > 0 {
			speedup = warmQPS / coldQPS
		}
		fmt.Printf("  engine warm cache:  %.1f qps, p50 %v, p99 %v (in-process)\n",
			warmQPS, ns(warmHist.Quantile(0.5)), ns(warmHist.Quantile(0.99)))
		fmt.Printf("  cold convergence:   %.1f qps, p50 %v, p99 %v -> warm-cache speedup %.1fx\n",
			coldQPS, ns(coldHist.Quantile(0.5)), ns(coldHist.Quantile(0.99)), speedup)
		entries = append(entries,
			perf.Entry{
				Name:         "serve-warm-engine",
				Topology:     *asFlag,
				NsPerOp:      int64(warmHist.Mean()),
				Cases:        *baseline,
				CasesPerSec:  warmQPS,
				P50Ns:        warmHist.Quantile(0.5),
				P99Ns:        warmHist.Quantile(0.99),
				CacheHitRate: 1,
			},
			perf.Entry{
				Name:        "serve-cold-baseline",
				Topology:    *asFlag,
				NsPerOp:     int64(coldHist.Mean()),
				Cases:       *baseline,
				CasesPerSec: coldQPS,
				P50Ns:       coldHist.Quantile(0.5),
				P99Ns:       coldHist.Quantile(0.99),
			})
	}

	if *benchOut != "" {
		path, err := perf.MergeFile(*benchOut, entries)
		if err != nil {
			die(fmt.Errorf("bench-json: %v", err))
		}
		fmt.Fprintf(os.Stderr, "rtrload: wrote %s\n", path)
	}

	if errs > 0 {
		fmt.Fprintf(os.Stderr, "rtrload: %d request errors\n", errs)
		os.Exit(1)
	}
	if *minQPS > 0 && qps < *minQPS {
		fmt.Fprintf(os.Stderr, "rtrload: %.1f qps below -min-qps %.1f\n", qps, *minQPS)
		os.Exit(1)
	}
	if *minSpeed > 0 && speedup < *minSpeed {
		fmt.Fprintf(os.Stderr, "rtrload: warm speedup %.1fx below -min-speedup %.1f\n", speedup, *minSpeed)
		os.Exit(1)
	}
}

func ns(v int64) time.Duration { return time.Duration(v).Round(time.Microsecond) }

// timeEngine runs n queries of the mix serially through an in-process
// engine and returns the latency histogram and throughput.
func timeEngine(e *serve.Engine, mix []serve.Query, n int) (*perf.Histogram, float64) {
	var h perf.Histogram
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if _, err := e.Query(mix[i%len(mix)]); err != nil {
			die(fmt.Errorf("baseline query: %v", err))
		}
		h.Record(time.Since(t0).Nanoseconds())
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return &h, 0
	}
	return &h, float64(n) / elapsed.Seconds()
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "rtrload: %v\n", err)
	os.Exit(1)
}

// buildMix enumerates real test cases from deterministic random
// failure instances — the identical derivation for every client with
// the same seed, so daemon and load generator agree on the graphs and
// the instances without any out-of-band coordination.
func buildMix(w *sim.World, topo string, seed int64, failures, pairs int, scheme string) []serve.Query {
	rng := rand.New(rand.NewSource(seedpkg.Derive(seed, "rtrload", topo)))
	var mix []serve.Query
	got := 0
	for draws := 0; got < failures && draws < sim.MaxCollectDraws; draws++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, irr := sim.CasesFromScenario(w, sc)
		cases := append(rec, irr...)
		if len(cases) == 0 {
			continue
		}
		if len(cases) > pairs {
			cases = cases[:pairs]
		}
		for _, c := range cases {
			mix = append(mix, serve.Query{
				Topo: topo, Failure: sc.Desc(),
				Src: int(c.Initiator), Dst: int(c.Dst), Scheme: scheme,
			})
		}
		got++
	}
	return mix
}

func queryURL(base string, q serve.Query) string {
	v := url.Values{
		"topo":    {q.Topo},
		"failure": {q.Failure},
		"src":     {strconv.Itoa(q.Src)},
		"dst":     {strconv.Itoa(q.Dst)},
	}
	if q.Scheme != "" {
		v.Set("scheme", q.Scheme)
	}
	return base + "/recover?" + v.Encode()
}

// doQuery fires one GET and fully drains the response so the
// connection is reusable; any transport error or non-200 counts as a
// request error.
func doQuery(client *http.Client, base string, q serve.Query) bool {
	resp, err := client.Get(queryURL(base, q))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// buildMix keeps the queries of one failure instance adjacent, so
// folding runs of equal (topo, failure, scheme) into size-capped
// batches recovers exactly the per-instance grouping.
func buildBatches(mix []serve.Query, size int) []serve.Batch {
	var out []serve.Batch
	for _, q := range mix {
		n := len(out)
		if n == 0 || out[n-1].Topo != q.Topo || out[n-1].Failure != q.Failure ||
			out[n-1].Scheme != q.Scheme || len(out[n-1].Pairs) >= size {
			out = append(out, serve.Batch{Topo: q.Topo, Failure: q.Failure, Scheme: q.Scheme})
			n++
		}
		out[n-1].Pairs = append(out[n-1].Pairs, serve.Pair{Src: q.Src, Dst: q.Dst})
	}
	return out
}

// doBatch fires one POST batch and fully drains the response; any
// transport error or non-200 counts as a request error.
func doBatch(client *http.Client, base string, b serve.Batch) bool {
	body, err := json.Marshal(b)
	if err != nil {
		return false
	}
	resp, err := client.Post(base+"/recover", "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func waitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not ready after %v", base, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fetchStats(client *http.Client, base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/statsz: status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// runClosed runs the closed loop: conns workers, each sending its next
// request the moment the previous answer lands. Latency is per-request
// round trip; per-worker histograms merge after the run so the hot
// path records into unshared memory.
func runClosed(out *perf.Histogram, fire func(i int) bool, conns int, d time.Duration) (total, errs int64, elapsed time.Duration) {
	hists := make([]perf.Histogram, conns)
	var wg sync.WaitGroup
	var errCount atomic.Int64
	deadline := time.Now().Add(d)
	start := time.Now()
	for wk := 0; wk < conns; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			h := &hists[wk]
			// Workers start at spread offsets so the same instant mixes
			// failure instances instead of stampeding one entry.
			for i := wk * 7; time.Now().Before(deadline); i++ {
				t0 := time.Now()
				if !fire(i) {
					errCount.Add(1)
				}
				h.Record(time.Since(t0).Nanoseconds())
			}
		}(wk)
	}
	wg.Wait()
	elapsed = time.Since(start)
	for i := range hists {
		out.Merge(&hists[i])
	}
	return out.Count(), errCount.Load(), elapsed
}

// runOpen runs the open loop: requests depart on a fixed schedule
// (rate/sec) regardless of completions, with at most conns in flight.
// Latency is measured from the intended departure time, so queueing
// behind a saturated server shows up in the tail instead of silently
// slowing the offered load (the coordinated-omission fix).
func runOpen(out *perf.Histogram, fire func(i int) bool, conns int, rate float64, d time.Duration) (total, errs int64, elapsed time.Duration) {
	if rate <= 0 {
		return 0, 0, 0
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticks := int64(d / interval)
	hists := make([]perf.Histogram, conns)
	var wg sync.WaitGroup
	var errCount atomic.Int64
	var next atomic.Int64
	start := time.Now()
	for wk := 0; wk < conns; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			h := &hists[wk]
			for {
				i := next.Add(1) - 1
				if i >= ticks {
					return
				}
				intended := start.Add(time.Duration(i) * interval)
				if wait := time.Until(intended); wait > 0 {
					time.Sleep(wait)
				}
				if !fire(int(i)) {
					errCount.Add(1)
				}
				h.Record(time.Since(intended).Nanoseconds())
			}
		}(wk)
	}
	wg.Wait()
	elapsed = time.Since(start)
	for i := range hists {
		out.Merge(&hists[i])
	}
	return out.Count(), errCount.Load(), elapsed
}
