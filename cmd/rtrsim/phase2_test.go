package main

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// TestGoldenTable3Phase2Engines pins the engine-invariance contract at
// the CLI level: -phase2=astar and -phase2=alt must print byte-for-byte
// the table the default engine prints (the same golden file
// TestGoldenTable3 checks).
func TestGoldenTable3Phase2Engines(t *testing.T) {
	for _, engine := range []string{"astar", "alt"} {
		t.Run(engine, func(t *testing.T) {
			out, code := run(t, "-exp", "table3", "-as", "AS1239", "-cases", "50", "-seed", "1",
				"-phase2", engine)
			if code != 0 {
				t.Fatalf("exit %d", code)
			}
			checkGolden(t, "table3_as1239.golden", out)
		})
	}
}

// TestPhase2FlagValidation: an unknown engine name must fail fast with
// a usage-style message, before any world is built.
func TestPhase2FlagValidation(t *testing.T) {
	cmd := exec.Command(binary(t), "-exp", "table2", "-as", "AS1239", "-phase2", "bfs")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatal("-phase2=bfs must fail")
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatal(err)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("exit %d, want 1", ee.ExitCode())
	}
	if !strings.Contains(stderr.String(), `unknown -phase2 engine "bfs"`) {
		t.Fatalf("stderr missing engine error:\n%s", stderr.String())
	}
}
