package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// binary builds the rtrsim binary once per test process.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rtrsim-test-")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "rtrsim")
		if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// run executes the binary and returns its stdout and exit code; only
// stdout is asserted on — stderr carries progress and timings.
func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(binary(t), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("rtrsim %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	if code != 0 && code != 2 {
		t.Fatalf("rtrsim %v: exit %d\nstderr:\n%s", args, code, stderr.String())
	}
	return stdout.String(), code
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (rerun with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (rerun with -update if intended)\ngot:\n%s", path, got)
	}
}

func TestGoldenTable3(t *testing.T) {
	out, code := run(t, "-exp", "table3", "-as", "AS1239", "-cases", "50", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "table3_as1239.golden", out)
}

func TestGoldenFig11(t *testing.T) {
	out, code := run(t, "-exp", "fig11", "-as", "AS1239", "-fig11-areas", "20", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "fig11_as1239.golden", out)
}

// TestOutputIdenticalAcrossWorkers: the sharded sweep must make the
// CLI's stdout byte-identical for any -workers value.
func TestOutputIdenticalAcrossWorkers(t *testing.T) {
	args := func(workers string) []string {
		return []string{"-exp", "table3,table4,fig11", "-as", "AS1239",
			"-cases", "40", "-block", "15", "-fig11-areas", "20", "-seed", "3",
			"-workers", workers}
	}
	want, code := run(t, args("1")...)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, workers := range []string{"4", "16"} {
		got, code := run(t, args(workers)...)
		if code != 0 {
			t.Fatalf("workers=%s: exit %d", workers, code)
		}
		if got != want {
			t.Errorf("-workers %s changed the output", workers)
		}
	}
}

// TestInterruptAndResume: a run stopped after two shards (exit code
// 2) and resumed with more workers prints exactly the bytes of an
// uninterrupted run.
func TestInterruptAndResume(t *testing.T) {
	base := []string{"-exp", "table3,fig11", "-as", "AS1239",
		"-cases", "40", "-block", "15", "-fig11-areas", "20", "-seed", "5"}
	want, code := run(t, append(base, "-workers", "2")...)
	if code != 0 {
		t.Fatalf("uninterrupted run: exit %d", code)
	}

	state := filepath.Join(t.TempDir(), "st")
	out, code := run(t, append(base, "-workers", "1", "-state", state, "-max-shards", "2")...)
	if code != 2 {
		t.Fatalf("interrupted run: exit %d, want 2", code)
	}
	if out != "" {
		t.Errorf("interrupted run printed results:\n%s", out)
	}

	got, code := run(t, append(base, "-workers", "4", "-state", state, "-resume")...)
	if code != 0 {
		t.Fatalf("resumed run: exit %d", code)
	}
	if got != want {
		t.Error("interrupt+resume stdout differs from an uninterrupted run")
	}
}

func TestResumeRequiresState(t *testing.T) {
	cmd := exec.Command(binary(t), "-resume")
	if err := cmd.Run(); err == nil {
		t.Fatal("-resume without -state must fail")
	}
}
