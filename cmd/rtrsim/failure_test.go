package main

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// TestFailureFlagValidation: an invalid -failure spec must exit 1
// before any experiment runs, printing the parse error.
func TestFailureFlagValidation(t *testing.T) {
	cmd := exec.Command(binary(t), "-exp", "table2", "-as", "AS1239", "-failure", "frisbee")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("-failure=frisbee must exit nonzero, got %v", err)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("exit %d, want 1", ee.ExitCode())
	}
	if !strings.Contains(stderr.String(), "unknown generator kind") {
		t.Fatalf("stderr missing the parse error:\n%s", stderr.String())
	}
}

// TestFailureDefaultSpecMatchesUnset: -failure disk is the same
// generator as the default, so stdout must be byte-identical — the
// refactoring contract that keeps the golden files valid.
func TestFailureDefaultSpecMatchesUnset(t *testing.T) {
	base := []string{"-exp", "table3", "-as", "AS1239", "-cases", "40", "-seed", "1"}
	want, code := run(t, base...)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	got, code := run(t, append(base, "-failure", "disk")...)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if got != want {
		t.Error("-failure disk changed the output relative to the default")
	}
}

// TestFailureGeneratorSweeps: each alternative generator family runs a
// small checked sweep end to end — including a Fig.-11-style radius
// curve for the models that support radius pinning — deterministically
// across worker counts.
func TestFailureGeneratorSweeps(t *testing.T) {
	for _, spec := range []string{"disks:k=2,disjoint", "cut:w=150", "srlg:g=9,n=2"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			exp := "table3,fig11"
			if strings.HasPrefix(spec, "srlg") {
				exp = "table3" // srlg has no radius knob; fig11 refuses it
			}
			args := func(workers string) []string {
				return []string{"-exp", exp, "-as", "AS1239", "-cases", "30",
					"-fig11-areas", "10", "-seed", "2", "-check",
					"-failure", spec, "-workers", workers}
			}
			want, code := run(t, args("1")...)
			if code != 0 {
				t.Fatalf("exit %d", code)
			}
			if !strings.Contains(want, "Table III") {
				t.Fatalf("sweep produced no Table III output:\n%s", want)
			}
			got, code := run(t, args("4")...)
			if code != 0 {
				t.Fatalf("exit %d", code)
			}
			if got != want {
				t.Error("-workers changed the output under a non-default generator")
			}
		})
	}
}

// TestFailureFig11RequiresRadius: radius-free generators must refuse
// fig11 with a clear error.
func TestFailureFig11RequiresRadius(t *testing.T) {
	cmd := exec.Command(binary(t), "-exp", "fig11", "-as", "AS1239",
		"-fig11-areas", "10", "-failure", "link")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("fig11 with -failure link must exit 1, got %v", err)
	}
	if !strings.Contains(stderr.String(), "radius") {
		t.Fatalf("stderr missing the radius error:\n%s", stderr.String())
	}
}
