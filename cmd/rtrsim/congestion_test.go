package main

import (
	"bytes"
	"errors"
	"os/exec"
	"strconv"
	"strings"
	"testing"
)

// TestGoldenCongestion pins the congestion experiment's stdout: the
// utilization table is a pure function of (topology, seed, pairs,
// scenarios, schemes), like every other experiment.
func TestGoldenCongestion(t *testing.T) {
	out, code := run(t, "-exp", "congestion", "-as", "AS1239", "-seed", "1",
		"-util-pairs", "200", "-util-scenarios", "3", "-check")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	checkGolden(t, "congestion_as1239.golden", out)
}

// TestSpreadBeatsRTRPeak is the acceptance gate for the load-spreading
// scheme: under the default congestion workload it must report a lower
// post-recovery peak-link utilization than plain RTR on the bundled
// Rocketfuel topology the experiment runs on.
func TestSpreadBeatsRTRPeak(t *testing.T) {
	out, code := run(t, "-exp", "congestion", "-as", "AS1239", "-seed", "1",
		"-util-pairs", "400", "-util-scenarios", "4")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	peaks := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 6 || f[0] != "AS1239" {
			continue
		}
		peak, err := strconv.ParseFloat(f[5], 64)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		peaks[f[1]] = peak
	}
	if len(peaks) != 2 {
		t.Fatalf("expected rtr and rtr-spread rows, got %v\noutput:\n%s", peaks, out)
	}
	if peaks["rtr-spread"] >= peaks["rtr"] {
		t.Errorf("rtr-spread post-recovery peak %.4f not below rtr's %.4f", peaks["rtr-spread"], peaks["rtr"])
	}
}

// TestUnknownSchemeExitsOne: a scheme name the registry doesn't know
// is rejected at flag parse with exit 1, before any world is built.
func TestUnknownSchemeExitsOne(t *testing.T) {
	cmd := exec.Command(binary(t), "-exp", "congestion", "-as", "AS1239", "-scheme", "ospf")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("err = %v, want exit 1", err)
	}
	if !strings.Contains(stderr.String(), "unknown scheme") {
		t.Errorf("stderr %q does not explain the unknown scheme", stderr.String())
	}
}
