// Command rtrsim runs the paper's evaluation: it regenerates every
// table and figure of "Optimal Recovery from Large-Scale Failures in
// IP Networks" (ICDCS 2012) on synthesized Table II topologies.
//
// Usage:
//
//	rtrsim -exp all                    # everything, default workload
//	rtrsim -exp table3 -as AS209       # one table, one topology
//	rtrsim -exp fig7,fig10 -cases 2000 # figures with a smaller workload
//
// Experiments: table2 table3 table4 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 loss ablation netsim multiarea congestion (and "all"). Pass
// -csv <dir> to also write machine-readable CSV files for plotting.
//
// The congestion experiment replays a gravity-model traffic matrix at
// heavy offered load under failures and reports per-link utilization
// before and after recovery, once per scheme named by -scheme (any
// names from the recovery-scheme registry, e.g. rtr,rtr-spread):
//
//	rtrsim -exp congestion -as AS1239 -scheme rtr,rtr-spread
//
// Sweeps (table/figure workloads and fig11) execute as deterministic
// shards over a worker pool; results are identical for any -workers
// value. With -state they checkpoint as they go, an interrupt (Ctrl-C)
// drains gracefully, and -resume continues exactly where the sweep
// stopped — the final output is bit-identical to an uninterrupted run:
//
//	rtrsim -exp all -state run1           # checkpointed run
//	rtrsim -exp all -state run1 -resume   # continue after interrupt
//	rtrsim -exp table3 -workers 16        # shard-level parallelism
//
// Pass -check to run the invariant oracle (internal/invariant) on
// every sweep case and on the loss experiment's packet accounting:
// the run fails fast on the first paper-level invariant violation,
// printing a minimized repro string (topology, case triple, failure
// instance). Checking changes no results; it only validates them:
//
//	rtrsim -exp table3 -as AS1239 -cases 200 -check
//
// Pass -failure to draw sweep scenarios from a pluggable failure
// model instead of the paper's single disk (see internal/failure):
//
//	rtrsim -exp table3 -failure disks:k=3,disjoint   # multi-disk
//	rtrsim -exp fig11 -failure cut:w=200             # conduit cuts
//	rtrsim -exp table3 -failure srlg:g=16,n=2 -check # correlated SRLGs
//
// The spec joins the checkpoint fingerprint, so checkpoints of
// different failure models never merge; multi-perimeter models relax
// the single-perimeter invariants accordingly under -check.
//
// Profiling and performance tracking:
//
//	rtrsim -exp table3 -cpuprofile cpu.out  # pprof CPU profile
//	rtrsim -exp table3 -memprofile mem.out  # pprof heap profile
//	rtrsim -exp table3 -bench-json .        # write BENCH_<date>.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/igp"
	"repro/internal/invariant"
	"repro/internal/mrc"
	"repro/internal/netsim"
	"repro/internal/perf"
	"repro/internal/report"
	"repro/internal/routing"
	"repro/internal/scheme"
	seedpkg "repro/internal/seed"
	"repro/internal/sim"
	"repro/internal/spt"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiments: table2,table3,table4,fig7..fig13,all")
		asFlag     = flag.String("as", "all", "comma-separated Table II topologies (e.g. AS209,AS7018) or 'all'")
		cases      = flag.Int("cases", 2000, "recoverable and irrecoverable test cases per topology")
		seed       = flag.Int64("seed", 1, "base random seed (topology synthesis and workloads)")
		fig11Area  = flag.Int("fig11-areas", 200, "failure areas per radius for fig11")
		lossScen   = flag.Int("loss-scenarios", 40, "failure scenarios for the loss experiment")
		csvDir     = flag.String("csv", "", "also write machine-readable CSVs into this directory")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		benchJSON  = flag.String("bench-json", "", "write a BENCH_<date>.json performance record into this directory (or to the given .json path)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel sweep shards (results are identical for any value)")
		blockSize  = flag.Int("block", sweep.DefaultBlockCases, "test cases per sweep shard (checkpoint granularity)")
		stateDir   = flag.String("state", "", "checkpoint directory (results.jsonl + manifest.json) for resumable sweeps")
		resume     = flag.Bool("resume", false, "skip shards already recorded in -state and merge their results")
		check      = flag.Bool("check", false, "run the invariant oracle on every sweep case and loss result; fail fast with a repro string")
		maxShards  = flag.Int("max-shards", 0, "stop after executing N shards, exit 2 (exercises the interrupt path deterministically)")
		phase2     = flag.String("phase2", "dijkstra", "phase-2 route engine: dijkstra (full trees), astar (goal-directed, Euclidean heuristic), or alt (goal-directed, landmark heuristic); all engines print identical results")
		failSpec   = flag.String("failure", "", "failure-generator spec for sweep cases and fig11 (disk, disks:k=3,disjoint, cut:w=200, srlg:g=16,n=2, cascade, transient, link); empty = the paper's single disk")
		schemeFlag = flag.String("scheme", "rtr,rtr-spread", "comma-separated recovery schemes for the congestion experiment (registry names: "+strings.Join(scheme.Names(), ", ")+")")
		utilPairs  = flag.Int("util-pairs", sweep.DefaultUtilPairs, "traffic-matrix size for the congestion experiment")
		utilScen   = flag.Int("util-scenarios", sweep.DefaultUtilScenarios, "failure scenarios per (topology, scheme) congestion shard")
	)
	flag.Parse()
	// Scheme names fail fast at flag parse, before any world is built.
	var utilSchemes []string
	for _, name := range strings.Split(*schemeFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := scheme.Get(name); err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: -scheme: %v\n", err)
			os.Exit(1)
		}
		utilSchemes = append(utilSchemes, name)
	}
	if *resume && *stateDir == "" {
		fmt.Fprintln(os.Stderr, "rtrsim: -resume requires -state")
		os.Exit(1)
	}
	engine, err := spt.ParseEngine(*phase2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
		os.Exit(1)
	}
	// Validate the failure spec fail-fast, before worlds are built.
	if _, err := failure.ParseSpecOrDefault(*failSpec); err != nil {
		fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
		os.Exit(1)
	}

	// Ctrl-C cancels the sweep context: in-flight shards finish and
	// are checkpointed, queued shards never start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtrsim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rtrsim: memprofile: %v\n", err)
			}
		}()
	}
	var rec *perf.Recorder
	if *benchJSON != "" {
		rec = perf.NewRecorder()
		defer func() {
			// Merge, don't overwrite: the day's record accumulates
			// entries from every tool (rtrsim, rtrload, rtrscale), and a
			// partial rerun must only replace its own keys.
			path, err := perf.MergeFile(*benchJSON, rec.Record().Entries)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtrsim: bench-json: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "rtrsim: wrote %s\n", path)
		}()
	}

	names := topology.ASNames()
	if *asFlag != "all" {
		names = strings.Split(*asFlag, ",")
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	has := func(e string) bool { return all || want[e] }

	if has("table2") {
		printTable2(names, *seed)
	}

	needData := false
	for _, e := range []string{"table3", "table4", "fig7", "fig8", "fig9", "fig10", "fig12", "fig13"} {
		if has(e) {
			needData = true
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
			os.Exit(1)
		}
	}

	var worlds []*sim.World
	worldsByName := map[string]*sim.World{}
	for _, name := range names {
		start := time.Now()
		w, err := sim.NewWorldPhase2(name, *seed, engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
			os.Exit(1)
		}
		if rec != nil {
			rec.Observe("world-build", name, time.Since(start), 0)
		}
		worlds = append(worlds, w)
		worldsByName[name] = w
	}
	if rec != nil {
		recordConvergenceBench(rec, worlds, *seed)
		recordSinglePairBench(rec, names, *seed)
	}

	// All case datasets and the fig11 radius sweep run as one sharded,
	// checkpointed sweep; every shard seeds its RNG from (seed, shard
	// key), so the merged output does not depend on -workers or on
	// interrupt/resume boundaries.
	var datasets []*sim.Dataset
	var fig11Series map[string][]sim.Fig11Point
	var utilResults []*traffic.Result
	if needData || has("fig11") || has("congestion") {
		spec := sweep.Spec{BaseSeed: *seed, Topologies: names, BlockCases: *blockSize, Check: *check, Phase2: *phase2, Failure: *failSpec}
		if needData {
			spec.Recoverable, spec.Irrecoverable = *cases, *cases
		}
		if has("fig11") {
			spec.Fig11Radii = sim.DefaultRadii()
			spec.Fig11Areas = *fig11Area
		}
		if has("congestion") {
			spec.UtilSchemes = utilSchemes
			spec.UtilPairs = *utilPairs
			spec.UtilScenarios = *utilScen
		}
		eng := &sweep.Engine{
			Spec:          spec,
			Worlds:        worldsByName,
			Workers:       *workers,
			Dir:           *stateDir,
			Resume:        *resume,
			MaxShards:     *maxShards,
			Progress:      os.Stderr,
			ProgressEvery: 10 * time.Second,
			Recorder:      rec,
		}
		res, err := eng.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
			os.Exit(1)
		}
		if res.Interrupted {
			if *stateDir != "" {
				fmt.Fprintf(os.Stderr, "rtrsim: interrupted after %d/%d shards; rerun with -resume -state %s to continue\n",
					len(res.Results), len(res.Plan), *stateDir)
			} else {
				fmt.Fprintf(os.Stderr, "rtrsim: interrupted after %d/%d shards; progress not kept (no -state)\n",
					len(res.Results), len(res.Plan))
			}
			os.Exit(2)
		}
		if needData {
			byName, err := res.Datasets(worldsByName)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
				os.Exit(1)
			}
			for _, w := range worlds {
				d := byName[w.Topo.Name]
				fmt.Fprintf(os.Stderr, "rtrsim: dataset %s (%d+%d cases)\n",
					w.Topo.Name, len(d.Rec), len(d.Irr))
				datasets = append(datasets, d)
			}
		}
		if has("fig11") {
			if fig11Series, err = res.Fig11(); err != nil {
				fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
				os.Exit(1)
			}
		}
		if has("congestion") {
			if utilResults, err = res.Utils(); err != nil {
				fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
				os.Exit(1)
			}
			if rec != nil {
				for _, u := range utilResults {
					rec.Add(perf.Entry{Name: "congestion-" + u.Scheme, Topology: u.Topology, PeakUtil: u.Post.Peak})
				}
			}
		}
	}

	if has("fig7") {
		printFig7(datasets)
	}
	if has("table3") {
		printTable3(datasets)
	}
	if has("fig8") {
		printCDFPair(datasets, "Fig. 8 — CDF of stretch of recovery paths", "stretch",
			func(d *sim.Dataset) (*stats.CDF, *stats.CDF) { return d.Fig8() })
	}
	if has("fig9") {
		printCDFPair(datasets, "Fig. 9 — CDF of shortest-path calculations (recoverable)", "calcs",
			func(d *sim.Dataset) (*stats.CDF, *stats.CDF) { return d.Fig9() })
	}
	if has("fig10") {
		printFig10(datasets)
	}
	if has("fig11") {
		printFig11(fig11Series, names)
	}
	if has("fig12") {
		printCDFPair(datasets, "Fig. 12 — CDF of wasted computation (irrecoverable)", "calcs",
			func(d *sim.Dataset) (*stats.CDF, *stats.CDF) { return d.Fig12() })
	}
	if has("fig13") {
		printCDFPair(datasets, "Fig. 13 — CDF of wasted transmission (irrecoverable)", "bytes",
			func(d *sim.Dataset) (*stats.CDF, *stats.CDF) { return d.Fig13() })
	}
	if has("table4") {
		printTable4(datasets)
	}
	if has("congestion") {
		printCongestion(utilResults)
	}
	if has("loss") {
		printLoss(worlds, *lossScen, seedpkg.Derive(*seed, "loss"), *check)
	}
	if has("ablation") {
		printAblation(names, *seed, *cases)
	}
	if has("netsim") {
		printNetsim(worlds, seedpkg.Derive(*seed, "netsim"))
	}
	if has("multiarea") {
		printMultiArea(worlds, seedpkg.Derive(*seed, "multiarea"))
	}
	if *csvDir != "" {
		if err := writeCSVs(*csvDir, datasets, fig11Series, utilResults, has); err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: csv: %v\n", err)
			os.Exit(1)
		}
	}
}

// printCongestion reports the congestion experiment: per-link
// utilization at heavy offered load before the failure (the calibrated
// operating point) and the worst post-recovery column observed across
// scenarios, per (topology, scheme).
func printCongestion(results []*traffic.Result) {
	fmt.Println("Congestion — link utilization before/after recovery (gravity traffic, heavy load)")
	fmt.Printf("%-10s %-12s %8s %8s | %8s %8s %8s | %9s\n",
		"Topology", "Scheme", "pre-peak", "pre-p50", "peak", "p99", "p50", "delivered")
	for _, r := range results {
		delivered := 100.0
		if r.Flows.Offered > 0 {
			delivered = 100 * r.Flows.Delivered / r.Flows.Offered
		}
		fmt.Printf("%-10s %-12s %8.3f %8.3f | %8.3f %8.3f %8.3f | %8.1f%%\n",
			r.Topology, r.Scheme, r.Pre.Peak, r.Pre.P50,
			r.Post.Peak, r.Post.P99, r.Post.P50, delivered)
	}
	fmt.Println()
}

// recordConvergenceBench times the per-scenario converged-table builds
// (cold ComputeTablesUnder vs incremental RecomputeTablesUnder), the
// MRC tree-matrix builds (cold vs warm-start), and the case runner
// (per-case oracle vs batched grouped execution) for every topology,
// once serially and once with GOMAXPROCS=NumCPU, so BENCH_<date>.json
// tracks the incremental convergence layer, the execution batching,
// and the par.For speedups.
func recordConvergenceBench(rec *perf.Recorder, worlds []*sim.World, seed int64) {
	const scenarios = 20
	procsList := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		procsList = append(procsList, n)
	}
	for _, w := range worlds {
		name := w.Topo.Name
		// Pre-draw the scenario batch so the cold and incremental
		// variants time identical work.
		rng := rand.New(rand.NewSource(seedpkg.Derive(seed, "bench-"+name)))
		scs := make([]*failure.Scenario, 0, scenarios)
		for len(scs) < scenarios {
			if sc := failure.RandomScenario(w.Topo, rng); sc.HasFailures() {
				scs = append(scs, sc)
			}
		}
		for _, procs := range procsList {
			rec.Measure("tables-cold", name, procs, func() {
				for _, sc := range scs {
					routing.ComputeTablesUnder(w.Topo, sc)
				}
			})
			rec.Measure("tables-incremental", name, procs, func() {
				for _, sc := range scs {
					routing.RecomputeTablesUnder(w.Topo, w.Tables, sc)
				}
			})
			rec.Measure("mrc-trees-cold", name, procs, func() {
				if _, err := mrc.New(w.Topo, 0); err != nil {
					fmt.Fprintf(os.Stderr, "rtrsim: bench mrc cold %s: %v\n", name, err)
				}
			})
			rec.Measure("mrc-trees-warm", name, procs, func() {
				if _, err := mrc.NewWarm(w.Topo, 0, w.Tables); err != nil {
					fmt.Fprintf(os.Stderr, "rtrsim: bench mrc warm %s: %v\n", name, err)
				}
			})
		}
		// The runner entries use the full case fan-out of the first
		// pre-drawn scenario with any cases: maximal destination
		// sharing per (initiator, trigger) group, the workload the
		// batched runner is built for.
		var cases []*sim.Case
		for _, sc := range scs {
			r, i := sim.CasesFromScenario(w, sc)
			if cases = append(append(cases, r...), i...); len(cases) > 0 {
				break
			}
		}
		if len(cases) == 0 {
			continue
		}
		for _, procs := range procsList {
			rec.Measure("runall-percase", name, procs, func() {
				sim.RunAllPerCase(w, cases, procs)
			})
			rec.Measure("runall-batched", name, procs, func() {
				sim.RunAllN(w, cases, procs)
			})
		}
	}
}

// recordSinglePairBench times one frozen single-pair recovery per
// protocol under every phase-2 engine on the two largest Table II
// topologies, so BENCH_<date>.json tracks the goal-directed engines'
// single-pair latency against the full-tree baseline. Each entry runs
// the same frozen (initiator, destination, failure area) case — the
// engines are output-identical, so the entries time identical work.
func recordSinglePairBench(rec *perf.Recorder, names []string, seed int64) {
	const ops = 50
	singlePairAS := map[string]bool{"AS7018": true, "AS3549": true}
	engines := []spt.Engine{spt.EngineDijkstra, spt.EngineAStar, spt.EngineALT}
	for _, name := range names {
		if !singlePairAS[name] {
			continue
		}
		for _, eng := range engines {
			w, err := sim.NewWorldPhase2(name, seed, eng)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtrsim: bench single-pair %s/%s: %v\n", name, eng, err)
				continue
			}
			p, err := sim.NewSinglePair(w, seedpkg.Derive(seed, "single-pair", name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtrsim: bench single-pair %s/%s: %v\n", name, eng, err)
				continue
			}
			protos := []struct {
				proto string
				run   func() error
			}{
				{"rtr", func() error { _, err := p.RTR(); return err }},
				{"fcp", func() error { _, err := p.FCP(); return err }},
				{"mrc", func() error { _, err := p.MRC(); return err }},
			}
			for _, pr := range protos {
				var runErr error
				rec.Measure("single-pair-"+pr.proto+"-"+eng.String(), name, 1, func() {
					for i := 0; i < ops; i++ {
						if err := pr.run(); err != nil && runErr == nil {
							runErr = err
						}
					}
				})
				if runErr != nil {
					fmt.Fprintf(os.Stderr, "rtrsim: bench single-pair %s/%s/%s: %v\n", name, pr.proto, eng, runErr)
				}
			}
		}
	}
}

func printAblation(names []string, seed int64, cases int) {
	fmt.Println("Ablations — design choices (DESIGN.md §6)")
	fmt.Println("termination rule: enclosure-verified vs the paper's literal rule")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "Topology", "ver-opt%", "ver-p90ms", "pap-opt%", "pap-p90ms")
	for _, as := range names {
		r, err := sim.AblateTermination(as, seed, cases)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
			continue
		}
		fmt.Printf("%-10s %12.1f %12.0f %12.1f %12.0f\n", r.AS, r.VerifiedOptimal, r.VerifiedP90Ms, r.PaperOptimal, r.PaperP90Ms)
	}
	fmt.Println("\nconstraints 1-2: failure coverage and walk length (2x2 with termination)")
	fmt.Printf("%-10s | %10s %10s | %10s %10s\n", "", "verified", "", "paper", "")
	fmt.Printf("%-10s | %10s %10s | %10s %10s\n", "Topology", "con", "unc", "con", "unc")
	for _, as := range names {
		r, err := sim.AblateConstraints(as, seed, cases)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
			continue
		}
		fmt.Printf("%-10s | %5.1f%%/%3.0fh %5.1f%%/%3.0fh | %5.1f%%/%3.0fh %5.1f%%/%3.0fh\n", r.AS,
			r.VerifiedConstrained.Coverage, r.VerifiedConstrained.AvgWalkHops,
			r.VerifiedUnconstrained.Coverage, r.VerifiedUnconstrained.AvgWalkHops,
			r.PaperConstrained.Coverage, r.PaperConstrained.AvgWalkHops,
			r.PaperUnconstrained.Coverage, r.PaperUnconstrained.AvgWalkHops)
	}
	fmt.Println("\nMRC configuration count vs recovery rate")
	ks := []int{3, 5, 8, 12}
	fmt.Printf("%-10s", "Topology")
	for _, k := range ks {
		fmt.Printf(" %7s", fmt.Sprintf("k=%d", k))
	}
	fmt.Println()
	for _, as := range names {
		pts, err := sim.AblateMRCConfigs(as, seed, cases, ks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
			continue
		}
		fmt.Printf("%-10s", as)
		for _, p := range pts {
			fmt.Printf(" %6.1f%%", p.Recovery)
		}
		fmt.Println()
	}
	fmt.Println("\nweighted asymmetric link costs (Theorem 2 is cost-model independent)")
	fmt.Printf("%-10s %12s %12s %12s\n", "Topology", "recovery%", "optimal%", "fcp-rec%")
	for _, as := range names {
		r, err := sim.AblateWeightedCosts(as, seed, cases)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtrsim: %v\n", err)
			continue
		}
		fmt.Printf("%-10s %12.1f %12.1f %12.1f\n", r.AS, r.Recovery, r.Optimal, r.FCPRecovery)
	}
	fmt.Println()
}

// printMultiArea runs the Section III-E experiment: recovery across
// two simultaneous failure areas with chained initiators.
func printMultiArea(worlds []*sim.World, seed int64) {
	fmt.Println("Multiple failure areas (Section III-E) — chained recoveries")
	fmt.Printf("%-10s %10s %12s %10s %12s\n", "Topology", "attempts", "delivered", "chained", "SP calcs")
	for _, w := range worlds {
		res := sim.MultiArea(w, seed, 200)
		fmt.Printf("%-10s %10d %11.1f%% %10d %12.2f\n",
			res.AS, res.Attempts, res.DeliveredPercent(), res.Chained, res.AvgSPCalcs)
	}
	fmt.Println()
}

// printNetsim runs the discrete-event packet simulator on a handful of
// random failures per topology and reports delivery with and without
// RTR plus the mean delay of recovered packets.
func printNetsim(worlds []*sim.World, seed int64) {
	fmt.Println("Packet-level simulation (discrete events, tuned IGP timers)")
	fmt.Printf("%-10s %10s %12s %12s %14s\n", "Topology", "packets", "no-RTR del.", "RTR del.", "rec. delay")
	timers := igp.TunedTimers()
	for _, w := range worlds {
		rng := rand.New(rand.NewSource(seed))
		var sent, delWith, delWithout int
		var recDelay time.Duration
		var recRuns int
		for trial := 0; trial < 12; trial++ {
			sc := failure.RandomScenario(w.Topo, rng)
			if !sc.HasFailures() {
				continue
			}
			var flows []netsim.Flow
			n := w.Topo.G.NumNodes()
			for i := 0; i < 8; i++ {
				src := graph.NodeID(rng.Intn(n))
				dst := graph.NodeID(rng.Intn(n))
				if src == dst || sc.NodeDown(src) {
					continue
				}
				flows = append(flows, netsim.Flow{Src: src, Dst: dst, Interval: 25 * time.Millisecond})
			}
			if len(flows) == 0 {
				continue
			}
			cfg := netsim.Config{Flows: flows, Horizon: 600 * time.Millisecond, Timers: timers}
			resWith := netsim.New(w.RTR, w.Tables, sc, cfg).Run()
			cfg.DisableRTR = true
			resWithout := netsim.New(w.RTR, w.Tables, sc, cfg).Run()
			sent += len(resWith.Fates)
			delWith += resWith.Delivered()
			delWithout += resWithout.Delivered()
			if d := resWith.MeanDelay(func(f netsim.PacketFate) bool { return f.Recovered }); d > 0 {
				recDelay += d
				recRuns++
			}
		}
		if sent == 0 {
			continue
		}
		avgDelay := time.Duration(0)
		if recRuns > 0 {
			avgDelay = recDelay / time.Duration(recRuns)
		}
		fmt.Printf("%-10s %10d %11.1f%% %11.1f%% %14v\n", w.Topo.Name, sent,
			100*float64(delWithout)/float64(sent), 100*float64(delWith)/float64(sent),
			avgDelay.Round(100*time.Microsecond))
	}
	fmt.Println()
}

func printLoss(worlds []*sim.World, scenarios int, seed int64, check bool) {
	fmt.Println("Convergence packet loss — RTR vs no recovery (classic IGP timers)")
	fmt.Printf("%-10s %14s %12s %14s %14s %8s\n",
		"Topology", "convergence", "failedPaths", "dropNoRec(M)", "dropRTR(M)", "saved")
	for _, w := range worlds {
		res := sim.PacketLoss(w, sim.LossConfig{
			Scenarios:        scenarios,
			PacketsPerSecond: 10000,
			Seed:             seed,
			Timers:           igp.ClassicTimers(),
		})
		if check {
			if vs := invariant.CheckLoss(res); len(vs) > 0 {
				fmt.Fprintf(os.Stderr, "rtrsim: %v\n", vs[0])
				os.Exit(1)
			}
		}
		fmt.Printf("%-10s %14v %12d %14.2f %14.2f %7.1f%%\n",
			res.AS, res.MeanConvergence.Round(time.Millisecond), res.FailedPaths,
			res.DroppedNoRecovery/1e6, res.DroppedWithRTR/1e6, res.SavedPercent)
	}
	fmt.Println()
}

func writeCSVs(dir string, datasets []*sim.Dataset, fig11Series map[string][]sim.Fig11Point, utilResults []*traffic.Result, has func(string) bool) error {
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if has("table3") && len(datasets) > 0 {
		rows := make([]sim.Table3Row, 0, len(datasets))
		for _, d := range datasets {
			rows = append(rows, d.Table3())
		}
		if err := write("table3.csv", func(w io.Writer) error { return report.WriteTable3(w, rows) }); err != nil {
			return err
		}
	}
	if has("table4") && len(datasets) > 0 {
		rows := make([]sim.Table4Row, 0, len(datasets))
		for _, d := range datasets {
			rows = append(rows, d.Table4())
		}
		if err := write("table4.csv", func(w io.Writer) error { return report.WriteTable4(w, rows) }); err != nil {
			return err
		}
	}
	type pairFn func(d *sim.Dataset) (*stats.CDF, *stats.CDF)
	pairs := []struct {
		id   string
		name string
		fn   pairFn
	}{
		{"fig8", "stretch", func(d *sim.Dataset) (*stats.CDF, *stats.CDF) { return d.Fig8() }},
		{"fig9", "calcs", func(d *sim.Dataset) (*stats.CDF, *stats.CDF) { return d.Fig9() }},
		{"fig12", "calcs", func(d *sim.Dataset) (*stats.CDF, *stats.CDF) { return d.Fig12() }},
		{"fig13", "bytes", func(d *sim.Dataset) (*stats.CDF, *stats.CDF) { return d.Fig13() }},
	}
	for _, d := range datasets {
		as := d.World.Topo.Name
		if has("fig7") {
			cdf := d.Fig7()
			if err := write("fig7_"+as+".csv", func(w io.Writer) error { return report.WriteCDF(w, "duration_ms", cdf) }); err != nil {
				return err
			}
		}
		for _, p := range pairs {
			if !has(p.id) {
				continue
			}
			rtr, fcp := p.fn(d)
			name := p.id + "_" + as + ".csv"
			if err := write(name, func(w io.Writer) error {
				return report.WriteCDFPair(w, p.name, [2]string{"RTR", "FCP"}, [2]*stats.CDF{rtr, fcp})
			}); err != nil {
				return err
			}
		}
		if has("fig10") {
			pts := d.Fig10(time.Second, 10*time.Millisecond)
			if err := write("fig10_"+as+".csv", func(w io.Writer) error { return report.WriteTimeSeries(w, pts) }); err != nil {
				return err
			}
		}
	}
	if has("fig11") && fig11Series != nil {
		if err := write("fig11.csv", func(w io.Writer) error { return report.WriteFig11(w, fig11Series) }); err != nil {
			return err
		}
	}
	if has("congestion") && len(utilResults) > 0 {
		if err := write("congestion.csv", func(w io.Writer) error { return report.WriteUtil(w, utilResults) }); err != nil {
			return err
		}
	}
	return nil
}

func printTable2(names []string, seed int64) {
	fmt.Println("Table II — Summary of topologies used in simulation")
	fmt.Printf("%-10s %8s %8s %12s\n", "Topology", "#Nodes", "#Links", "#Crossings")
	for _, name := range names {
		topo := topology.GenerateAS(name, seed)
		ci := topology.BuildCrossIndex(topo)
		fmt.Printf("%-10s %8d %8d %12d\n", name, topo.G.NumNodes(), topo.G.NumLinks(), ci.NumCrossings())
	}
	fmt.Println()
}

func printFig7(ds []*sim.Dataset) {
	fmt.Println("Fig. 7 — CDF of the duration of the first phase (ms)")
	fmt.Printf("%-10s %8s %8s %8s %8s %8s\n", "Topology", "p50", "p90", "p99", "max", "<=75ms")
	for _, d := range ds {
		c := d.Fig7()
		s := c.Summarize()
		fmt.Printf("%-10s %8.1f %8.1f %8.1f %8.1f %7.1f%%\n",
			d.World.Topo.Name, s.P50, s.P90, s.P99, s.Max, 100*c.At(75))
	}
	fmt.Println()
}

func printTable3(ds []*sim.Dataset) {
	fmt.Println("Table III — Performance of RTR, FCP, and MRC in recoverable test cases")
	fmt.Printf("%-10s | %6s %6s %6s | %6s %6s %6s | %5s %5s %5s | %4s %4s\n",
		"", "RTR", "FCP", "MRC", "RTR", "FCP", "MRC", "RTR", "FCP", "MRC", "RTR", "FCP")
	fmt.Printf("%-10s | %20s | %20s | %17s | %9s\n",
		"Topology", "Recovery rate (%)", "Optimal rate (%)", "Max stretch", "Max calc")
	var rows []sim.Table3Row
	for _, d := range ds {
		rows = append(rows, d.Table3())
	}
	for _, r := range rows {
		fmt.Printf("%-10s | %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f | %5.1f %5.1f %5.1f | %4d %4d\n",
			r.AS, r.RTRRecovery, r.FCPRecovery, r.MRCRecovery,
			r.RTROptimal, r.FCPOptimal, r.MRCOptimal,
			r.RTRMaxStretch, r.FCPMaxStretch, r.MRCMaxStretch,
			r.RTRMaxCalcs, r.FCPMaxCalcs)
	}
	if len(rows) > 1 {
		var o sim.Table3Row
		o.AS = "Overall"
		for _, r := range rows {
			o.RTRRecovery += r.RTRRecovery
			o.FCPRecovery += r.FCPRecovery
			o.MRCRecovery += r.MRCRecovery
			o.RTROptimal += r.RTROptimal
			o.FCPOptimal += r.FCPOptimal
			o.MRCOptimal += r.MRCOptimal
			o.RTRMaxStretch = max(o.RTRMaxStretch, r.RTRMaxStretch)
			o.FCPMaxStretch = max(o.FCPMaxStretch, r.FCPMaxStretch)
			o.MRCMaxStretch = max(o.MRCMaxStretch, r.MRCMaxStretch)
			if r.RTRMaxCalcs > o.RTRMaxCalcs {
				o.RTRMaxCalcs = r.RTRMaxCalcs
			}
			if r.FCPMaxCalcs > o.FCPMaxCalcs {
				o.FCPMaxCalcs = r.FCPMaxCalcs
			}
		}
		n := float64(len(rows))
		fmt.Printf("%-10s | %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f | %5.1f %5.1f %5.1f | %4d %4d\n",
			o.AS, o.RTRRecovery/n, o.FCPRecovery/n, o.MRCRecovery/n,
			o.RTROptimal/n, o.FCPOptimal/n, o.MRCOptimal/n,
			o.RTRMaxStretch, o.FCPMaxStretch, o.MRCMaxStretch,
			o.RTRMaxCalcs, o.FCPMaxCalcs)
	}
	fmt.Println()
}

func printCDFPair(ds []*sim.Dataset, title, unit string, get func(*sim.Dataset) (*stats.CDF, *stats.CDF)) {
	fmt.Println(title)
	fmt.Printf("%-10s | %28s | %28s\n", "", "RTR ("+unit+")", "FCP ("+unit+")")
	fmt.Printf("%-10s | %8s %9s %9s | %8s %9s %9s\n", "Topology", "mean", "p90", "max", "mean", "p90", "max")
	for _, d := range ds {
		r, f := get(d)
		if r.N() == 0 || f.N() == 0 {
			fmt.Printf("%-10s | %28s | %28s\n", d.World.Topo.Name, "(empty)", "(empty)")
			continue
		}
		fmt.Printf("%-10s | %8.2f %9.2f %9.2f | %8.2f %9.2f %9.2f\n",
			d.World.Topo.Name, r.Mean(), r.Quantile(0.9), r.Max(), f.Mean(), f.Quantile(0.9), f.Max())
	}
	fmt.Println()
}

func printFig10(ds []*sim.Dataset) {
	fmt.Println("Fig. 10 — Average transmission overhead over the first second (bytes)")
	samples := []time.Duration{0, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond, time.Second}
	header := []string{"Topology", "proto"}
	for _, t := range samples {
		header = append(header, t.String())
	}
	fmt.Printf("%-10s %-5s", header[0], header[1])
	for _, h := range header[2:] {
		fmt.Printf(" %8s", h)
	}
	fmt.Println()
	for _, d := range ds {
		pts := d.Fig10(time.Second, 10*time.Millisecond)
		at := func(t time.Duration, rtr bool) float64 {
			idx := sort.Search(len(pts), func(i int) bool { return pts[i].T >= t })
			if idx >= len(pts) {
				idx = len(pts) - 1
			}
			if rtr {
				return pts[idx].RTRBytes
			}
			return pts[idx].FCPBytes
		}
		for _, proto := range []string{"RTR", "FCP"} {
			fmt.Printf("%-10s %-5s", d.World.Topo.Name, proto)
			for _, t := range samples {
				fmt.Printf(" %8.2f", at(t, proto == "RTR"))
			}
			fmt.Println()
		}
	}
	fmt.Println()
}

func printFig11(series map[string][]sim.Fig11Point, names []string) {
	fmt.Println("Fig. 11 — Percentage of failed routing paths that are irrecoverable")
	fmt.Printf("%-10s", "radius")
	for _, r := range sim.DefaultRadii() {
		fmt.Printf(" %6.0f", r)
	}
	fmt.Println()
	for _, as := range names {
		fmt.Printf("%-10s", as)
		for _, p := range series[as] {
			fmt.Printf(" %5.1f%%", p.Percent)
		}
		fmt.Println()
	}
	fmt.Println()
}

func printTable4(ds []*sim.Dataset) {
	fmt.Println("Table IV — Wasted computation and wasted transmission (irrecoverable test cases)")
	fmt.Printf("%-10s | %9s %9s %9s %9s | %11s %11s %11s %11s\n",
		"Topology", "avgC RTR", "avgC FCP", "maxC RTR", "maxC FCP",
		"avgT RTR", "avgT FCP", "maxT RTR", "maxT FCP")
	var rows []sim.Table4Row
	for _, d := range ds {
		rows = append(rows, d.Table4())
	}
	for _, r := range rows {
		fmt.Printf("%-10s | %9.1f %9.1f %9.0f %9.0f | %11.1f %11.1f %11.0f %11.0f\n",
			r.AS, r.RTRAvgComp, r.FCPAvgComp, r.RTRMaxComp, r.FCPMaxComp,
			r.RTRAvgTrans, r.FCPAvgTrans, r.RTRMaxTrans, r.FCPMaxTrans)
	}
	if len(rows) > 1 {
		var compR, compF, transR, transF float64
		var maxCR, maxCF, maxTR, maxTF float64
		for _, r := range rows {
			compR += r.RTRAvgComp
			compF += r.FCPAvgComp
			transR += r.RTRAvgTrans
			transF += r.FCPAvgTrans
			maxCR = max(maxCR, r.RTRMaxComp)
			maxCF = max(maxCF, r.FCPMaxComp)
			maxTR = max(maxTR, r.RTRMaxTrans)
			maxTF = max(maxTF, r.FCPMaxTrans)
		}
		n := float64(len(rows))
		fmt.Printf("%-10s | %9.1f %9.1f %9.0f %9.0f | %11.1f %11.1f %11.0f %11.0f\n",
			"Overall", compR/n, compF/n, maxCR, maxCF, transR/n, transF/n, maxTR, maxTF)
		if compF > 0 && transF > 0 {
			fmt.Printf("RTR saves %.1f%% of computation and %.1f%% of transmission vs FCP\n",
				100*(1-compR/compF), 100*(1-transR/transF))
		}
	}
	fmt.Println()
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
