GO ?= go

.PHONY: check vet build test race bench-smoke bench clean

## check: the full pre-merge gate — vet, build, race-enabled tests, and
## a one-iteration pass over every benchmark so bench code can't rot.
check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-smoke: compile-and-run every benchmark once (correctness of
## the bench harness, not timing).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .

## bench: the numbers that back BENCH_<date>.json — full suite with
## allocation stats.
bench:
	$(GO) test -run xxx -bench . -benchtime 50x -benchmem .

clean:
	rm -f repro.test
