GO ?= go

.PHONY: check vet build test race bench-smoke bench bench-diff sweep-smoke sweep-smoke-generators check-invariants congestion-smoke serve-smoke scale-smoke fuzz-smoke clean

## check: the full pre-merge gate — vet, build, race-enabled tests, a
## one-iteration pass over every benchmark so bench code can't rot, an
## interrupt/resume sweep that must reproduce the uninterrupted run
## byte for byte, an invariant-checked sweep, a checked smoke sweep
## per alternative failure generator, a live daemon/load-generator
## round trip, and the 100k-node scale pipeline under wall-clock/RSS
## budgets.
check: vet build race bench-smoke sweep-smoke sweep-smoke-generators check-invariants congestion-smoke serve-smoke scale-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-smoke: compile-and-run every benchmark once (correctness of
## the bench harness, not timing).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .

## bench: the numbers that back BENCH_<date>.json — full suite with
## allocation stats.
bench:
	$(GO) test -run xxx -bench . -benchtime 50x -benchmem .

## bench-diff: regenerate a fresh performance record (world builds plus
## the convergence, single-pair, and case-runner benches; no dataset
## sweep) and print per-entry deltas against the latest checked-in
## BENCH_*.json. Time deltas are informational by default
## (BENCH_FAIL_OVER=0 never fails on ns/op); set BENCH_FAIL_OVER=25 to
## exit non-zero on any >25% ns/op regression. Allocation counts on
## the single-pair-* entries are deterministic (fixed op count over
## pooled scratch, no timing in the count), so they gate by default:
## with BENCH_FAIL_ALLOCS=10 the target fails on any >10% allocs/op
## regression there. Set BENCH_FAIL_ALLOCS=0 to make the whole run
## informational again.
BENCH_FAIL_OVER ?= 0
BENCH_FAIL_ALLOCS ?= 10
bench-diff:
	rm -rf .bench-diff && mkdir -p .bench-diff
	$(GO) run ./cmd/rtrsim -exp table2 -bench-json .bench-diff/new.json > /dev/null
	$(GO) run ./cmd/benchdiff -fail-over $(BENCH_FAIL_OVER) -fail-allocs-over $(BENCH_FAIL_ALLOCS) .bench-diff/new.json
	rm -rf .bench-diff

## sweep-smoke: end-to-end determinism of the sharded sweep. One
## uninterrupted run, then the same workload interrupted after two
## shards (-max-shards exits 2, hence the leading -) and resumed from
## its checkpoint; the two stdouts must be identical.
SWEEP_ARGS = -exp table3,fig11 -as AS1239 -cases 40 -block 15 -fig11-areas 20 -seed 1
sweep-smoke:
	rm -rf .sweep-smoke && mkdir -p .sweep-smoke
	$(GO) run ./cmd/rtrsim $(SWEEP_ARGS) -workers 2 > .sweep-smoke/full.txt
	-$(GO) run ./cmd/rtrsim $(SWEEP_ARGS) -workers 1 -state .sweep-smoke/st -max-shards 2 > .sweep-smoke/interrupted.txt 2>/dev/null
	$(GO) run ./cmd/rtrsim $(SWEEP_ARGS) -workers 4 -state .sweep-smoke/st -resume > .sweep-smoke/resumed.txt
	cmp .sweep-smoke/full.txt .sweep-smoke/resumed.txt
	rm -rf .sweep-smoke

## sweep-smoke-generators: a small invariant-checked sweep for each
## alternative failure-generator family (multi-disk, conduit cut,
## correlated SRLG) — the pluggable models must run the full sharded
## pipeline end to end under the oracle, with the checking profile
## derived from the generator.
GEN_SWEEP_ARGS = -exp table3 -as AS1239 -cases 30 -block 15 -seed 2 -check
sweep-smoke-generators:
	$(GO) run ./cmd/rtrsim $(GEN_SWEEP_ARGS) -failure disks:k=2,disjoint > /dev/null
	$(GO) run ./cmd/rtrsim $(GEN_SWEEP_ARGS) -failure cut:w=150 > /dev/null
	$(GO) run ./cmd/rtrsim $(GEN_SWEEP_ARGS) -failure srlg:g=9,n=2 > /dev/null

## check-invariants: the sweep-smoke workload with the invariant
## oracle attached (-check) under the race detector — every generated
## case must satisfy every paper-level invariant, and the loss model's
## packet accounting must conserve. Fails fast with a repro string.
CHECK_ARGS = -exp table3,loss -as AS1239 -cases 40 -block 15 -loss-scenarios 5 -seed 1
check-invariants:
	$(GO) run -race ./cmd/rtrsim $(CHECK_ARGS) -check > /dev/null

## congestion-smoke: a checked congestion sweep shard — gravity-model
## traffic at heavy offered load replayed through the recovery-scheme
## registry (rtr vs the load-spreading rtr-spread), with the
## utilization oracle (-check) validating flow conservation, column
## ordering, and the calibrated operating point. Also proves the
## -scheme flag fails fast (exit 1) on a name the registry doesn't
## know.
CONG_ARGS = -exp congestion -as AS1239 -util-pairs 200 -util-scenarios 3 -seed 1
congestion-smoke:
	$(GO) run ./cmd/rtrsim $(CONG_ARGS) -check > /dev/null
	! $(GO) run ./cmd/rtrsim -exp congestion -as AS1239 -scheme nosuch > /dev/null 2>&1

## serve-smoke: end-to-end daemon round trip. Starts rtrsimd on a
## loopback port with the invariant oracle attached, fires a short
## rtrload burst (must see nonzero qps and zero request errors), then
## interrupts the daemon and requires the sweep-style exit status 2
## after a clean drain.
SERVE_ADDR ?= 127.0.0.1:18423
serve-smoke:
	rm -rf .serve-smoke && mkdir -p .serve-smoke
	$(GO) build -o .serve-smoke/rtrsimd ./cmd/rtrsimd
	$(GO) build -o .serve-smoke/rtrload ./cmd/rtrload
	.serve-smoke/rtrsimd -addr $(SERVE_ADDR) -as AS1239 -check & pid=$$!; \
	  .serve-smoke/rtrload -addr $(SERVE_ADDR) -as AS1239 -duration 2s -conns 2 -wait 30s -min-qps 1 -baseline 0 \
	    || { kill $$pid 2>/dev/null; exit 1; }; \
	  kill -INT $$pid; wait $$pid; test $$? -eq 2
	rm -rf .serve-smoke

## scale-smoke: the 100k-node pipeline end to end — hierarchical
## synthesis, binary snapshot write plus streamed re-read, scale-mode
## world build (lazy tables, MRC disabled), one invariant-checked
## sweep shard with destination sampling, a converged-batch
## recompute, and warm single-pair serving. Gated on total wall clock
## and peak RSS (VmHWM) so large-graph time/memory regressions fail
## the pre-merge gate instead of landing silently. The budgets carry
## ~5x headroom over a measured single-core run (40s / 453 MiB).
SCALE_NODES ?= 100000
SCALE_BUDGET ?= 4m
SCALE_RSS_MB ?= 1536
scale-smoke:
	$(GO) run ./cmd/rtrscale -nodes $(SCALE_NODES) -budget $(SCALE_BUDGET) -max-rss-mb $(SCALE_RSS_MB)

## fuzz-smoke: a short native-fuzzing pass over the wire decoder, the
## topology parser, the failure-generator spec parser, and the capsule
## geometry predicates (CI runs this; use go test -fuzz directly for
## long sessions).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzDecodeHeader -fuzztime $(FUZZTIME) ./internal/routing
	$(GO) test -run xxx -fuzz 'FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/topology
	$(GO) test -run xxx -fuzz FuzzReadBinary -fuzztime $(FUZZTIME) ./internal/topology
	$(GO) test -run xxx -fuzz FuzzGeneratorSpec -fuzztime $(FUZZTIME) ./internal/failure
	$(GO) test -run xxx -fuzz FuzzCapsuleIntersect -fuzztime $(FUZZTIME) ./internal/geom

clean:
	rm -f repro.test
	rm -rf .sweep-smoke .bench-diff .serve-smoke
