// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each
// benchmark measures the cost of producing its artifact and reports
// the artifact's headline numbers as custom metrics, so
// `go test -bench=. -benchmem` both exercises and summarizes the
// reproduction. cmd/rtrsim prints the full paper-style tables.
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/igp"
	"repro/internal/mrc"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spt"
	"repro/internal/topology"
)

// benchCases sizes the benchmark workload: large enough for stable
// rates, small enough that the whole suite runs in well under a
// minute per iteration.
const benchCases = 400

var (
	benchOnce  sync.Once
	benchData  *sim.Dataset // AS1239 analogue dataset shared by figure benches
	benchList  []*sim.Case  // the raw cases behind benchData, for case-level benches
	benchWorld *sim.World
	benchErr   error
)

func buildBenchData(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		if benchWorld, benchErr = sim.NewWorld("AS1239", 11); benchErr == nil {
			rng := rand.New(rand.NewSource(42))
			rec, irr := sim.CollectBoth(benchWorld, rng, benchCases, benchCases)
			benchList = append(append([]*sim.Case(nil), rec...), irr...)
			benchData = &sim.Dataset{
				World: benchWorld,
				Rec:   sim.Records(sim.RunAll(benchWorld, rec)),
				Irr:   sim.Records(sim.RunAll(benchWorld, irr)),
			}
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

func sharedDataset(b *testing.B) *sim.Dataset {
	b.Helper()
	buildBenchData(b)
	return benchData
}

func sharedCases(b *testing.B) (*sim.World, []*sim.Case) {
	b.Helper()
	buildBenchData(b)
	return benchWorld, benchList
}

// BenchmarkTable1WalkTrace reproduces Table I: the full phase-1 walk
// plus phase-2 recovery on the paper's Fig. 6 worked example.
func BenchmarkTable1WalkTrace(b *testing.B) {
	topo := topology.PaperExample()
	ci := topology.BuildCrossIndex(topo)
	r := core.New(topo, ci)
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	lv := routing.NewLocalView(topo, sc)
	trigger := topology.PaperLink(topo, 6, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := r.NewSession(lv, topology.PaperNode(6))
		if err != nil {
			b.Fatal(err)
		}
		col, err := sess.Collect(trigger)
		if err != nil {
			b.Fatal(err)
		}
		if col.Walk.Hops() != 11 {
			b.Fatalf("Table I walk has %d hops, want 11", col.Walk.Hops())
		}
		if _, ok := sess.RecoveryPath(topology.PaperNode(17)); !ok {
			b.Fatal("v17 must be recoverable")
		}
	}
}

// BenchmarkTable2TopologySynthesis regenerates Table II: all eight
// ISP-like topologies with their node/link counts.
func BenchmarkTable2TopologySynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range topology.TableII() {
			topo, err := topology.Generate(p, rand.New(rand.NewSource(int64(i)+1)))
			if err != nil {
				b.Fatal(err)
			}
			if topo.G.NumNodes() != p.Nodes || topo.G.NumLinks() != p.Links {
				b.Fatalf("%s: %d/%d nodes/links, want %d/%d",
					p.Name, topo.G.NumNodes(), topo.G.NumLinks(), p.Nodes, p.Links)
			}
		}
	}
}

// BenchmarkFig7FirstPhaseDuration regenerates Fig. 7's CDF of
// first-phase durations.
func BenchmarkFig7FirstPhaseDuration(b *testing.B) {
	d := sharedDataset(b)
	b.ResetTimer()
	var p90 float64
	for i := 0; i < b.N; i++ {
		cdf := d.Fig7()
		p90 = cdf.Quantile(0.9)
	}
	b.ReportMetric(p90, "p90-ms")
}

// BenchmarkTable3Recoverable regenerates Table III's row for the
// shared topology and reports the headline rates.
func BenchmarkTable3Recoverable(b *testing.B) {
	d := sharedDataset(b)
	b.ResetTimer()
	var row sim.Table3Row
	for i := 0; i < b.N; i++ {
		row = d.Table3()
	}
	b.ReportMetric(row.RTROptimal, "rtr-optimal-%")
	b.ReportMetric(row.FCPOptimal, "fcp-optimal-%")
	b.ReportMetric(row.MRCRecovery, "mrc-recovery-%")
}

// BenchmarkFig8StretchCDF regenerates Fig. 8's stretch CDFs.
func BenchmarkFig8StretchCDF(b *testing.B) {
	d := sharedDataset(b)
	b.ResetTimer()
	var rtrMax, fcpMax float64
	for i := 0; i < b.N; i++ {
		rtr, fcp := d.Fig8()
		rtrMax, fcpMax = rtr.Max(), fcp.Max()
	}
	b.ReportMetric(rtrMax, "rtr-max-stretch")
	b.ReportMetric(fcpMax, "fcp-max-stretch")
}

// BenchmarkFig9ComputationCDF regenerates Fig. 9's CDFs of shortest
// path calculations on recoverable cases.
func BenchmarkFig9ComputationCDF(b *testing.B) {
	d := sharedDataset(b)
	b.ResetTimer()
	var rtrMean, fcpMean float64
	for i := 0; i < b.N; i++ {
		rtr, fcp := d.Fig9()
		rtrMean, fcpMean = rtr.Mean(), fcp.Mean()
	}
	b.ReportMetric(rtrMean, "rtr-calcs")
	b.ReportMetric(fcpMean, "fcp-calcs")
}

// BenchmarkFig10TransmissionOverTime regenerates Fig. 10's
// transmission-overhead time series over the first second.
func BenchmarkFig10TransmissionOverTime(b *testing.B) {
	d := sharedDataset(b)
	b.ResetTimer()
	var steadyRTR, steadyFCP float64
	for i := 0; i < b.N; i++ {
		pts := d.Fig10(time.Second, 10*time.Millisecond)
		last := pts[len(pts)-1]
		steadyRTR, steadyFCP = last.RTRBytes, last.FCPBytes
	}
	b.ReportMetric(steadyRTR, "rtr-steady-B")
	b.ReportMetric(steadyFCP, "fcp-steady-B")
}

// BenchmarkFig11IrrecoverableVsRadius regenerates a compressed Fig. 11
// sweep (three radii, fewer areas than the paper's 1000 per radius).
func BenchmarkFig11IrrecoverableVsRadius(b *testing.B) {
	w, err := sim.NewWorld("AS1239", 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var atMin, atMax float64
	for i := 0; i < b.N; i++ {
		pts := sim.Fig11(w, int64(i)+7, []float64{20, 160, 300}, 20)
		atMin, atMax = pts[0].Percent, pts[2].Percent
	}
	b.ReportMetric(atMin, "irrec-%-r20")
	b.ReportMetric(atMax, "irrec-%-r300")
}

// BenchmarkFig12WastedComputation regenerates Fig. 12's CDFs of wasted
// computation on irrecoverable cases.
func BenchmarkFig12WastedComputation(b *testing.B) {
	d := sharedDataset(b)
	b.ResetTimer()
	var rtrMax, fcpMean float64
	for i := 0; i < b.N; i++ {
		rtr, fcp := d.Fig12()
		rtrMax, fcpMean = rtr.Max(), fcp.Mean()
	}
	b.ReportMetric(rtrMax, "rtr-max-calcs")
	b.ReportMetric(fcpMean, "fcp-avg-calcs")
}

// BenchmarkFig13WastedTransmission regenerates Fig. 13's CDFs of
// wasted transmission on irrecoverable cases.
func BenchmarkFig13WastedTransmission(b *testing.B) {
	d := sharedDataset(b)
	b.ResetTimer()
	var rtrMean, fcpMean float64
	for i := 0; i < b.N; i++ {
		rtr, fcp := d.Fig13()
		rtrMean, fcpMean = rtr.Mean(), fcp.Mean()
	}
	b.ReportMetric(rtrMean, "rtr-avg-B")
	b.ReportMetric(fcpMean, "fcp-avg-B")
}

// BenchmarkTable4Irrecoverable regenerates Table IV's row and reports
// the paper's headline savings.
func BenchmarkTable4Irrecoverable(b *testing.B) {
	d := sharedDataset(b)
	b.ResetTimer()
	var row sim.Table4Row
	for i := 0; i < b.N; i++ {
		row = d.Table4()
	}
	if row.FCPAvgComp > 0 {
		b.ReportMetric(100*(1-row.RTRAvgComp/row.FCPAvgComp), "comp-saved-%")
	}
	if row.FCPAvgTrans > 0 {
		b.ReportMetric(100*(1-row.RTRAvgTrans/row.FCPAvgTrans), "trans-saved-%")
	}
}

// BenchmarkDatasetBuild measures the end-to-end cost of generating and
// running a full per-topology dataset (case generation + all three
// protocols), the unit of work behind Tables III/IV and Figs. 7-13.
func BenchmarkDatasetBuild(b *testing.B) {
	w, err := sim.NewWorld("AS1239", 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.BuildDataset(w, sim.Config{Recoverable: 100, Irrecoverable: 100, Seed: int64(i) + 1})
	}
}

// BenchmarkAblationTermination quantifies the enclosure-verified
// termination against the paper's literal rule (DESIGN.md §6): same
// workload, two engines, reported as optimal recovery rates.
func BenchmarkAblationTermination(b *testing.B) {
	topoSeed := int64(11)
	build := func(opts ...core.Option) (*sim.World, []*sim.Case) {
		p, _ := topology.ParamsFor("AS1239")
		topo, err := topology.Generate(p, rand.New(rand.NewSource(topoSeed)))
		if err != nil {
			b.Fatal(err)
		}
		w, err := sim.NewWorldFrom(topo, opts...)
		if err != nil {
			b.Fatal(err)
		}
		cases := sim.CollectCases(w, rand.New(rand.NewSource(5)), benchCases, true)
		return w, cases
	}
	verified, verCases := build()
	paper, papCases := build(core.WithPaperTermination())
	b.ResetTimer()
	var verOpt, papOpt float64
	for i := 0; i < b.N; i++ {
		vo := sim.RunAll(verified, verCases)
		po := sim.RunAll(paper, papCases)
		verOpt, papOpt = optimalRate(vo), optimalRate(po)
	}
	b.ReportMetric(verOpt, "verified-optimal-%")
	b.ReportMetric(papOpt, "paper-rule-optimal-%")
}

func optimalRate(outs []sim.Outcome) float64 {
	n, opt := 0, 0
	for _, o := range outs {
		if o.Err != nil {
			continue
		}
		n++
		if o.RTR.Optimal {
			opt++
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(opt) / float64(n)
}

// --- Substrate micro-benchmarks -------------------------------------

// BenchmarkDijkstra measures a full shortest-path-tree computation on
// the largest Table II topology.
func BenchmarkDijkstra(b *testing.B) {
	topo := topology.GenerateAS("AS7018", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spt.Compute(topo.G, graph.NodeID(i%topo.G.NumNodes()), graph.Nothing)
	}
}

// BenchmarkSPTCompute measures one full shortest-path-tree computation
// through the package-level entry point (owned result tree, pooled
// internal scratch), reporting allocations.
func BenchmarkSPTCompute(b *testing.B) {
	topo := topology.GenerateAS("AS7018", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spt.Compute(topo.G, graph.NodeID(i%topo.G.NumNodes()), graph.Nothing)
	}
}

// BenchmarkSPTComputeWorkspace measures the same computation through a
// reused Workspace (scratch result tree): the allocation-free hot path.
func BenchmarkSPTComputeWorkspace(b *testing.B) {
	topo := topology.GenerateAS("AS7018", 1)
	ws := spt.GetWorkspace()
	defer ws.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Compute(topo.G, graph.NodeID(i%topo.G.NumNodes()), graph.Nothing)
	}
}

// BenchmarkSPTRecompute measures the incremental SPT update through
// the package-level entry point, reporting allocations.
func BenchmarkSPTRecompute(b *testing.B) {
	topo := topology.GenerateAS("AS3561", 1)
	base := spt.Compute(topo.G, 0, graph.Nothing)
	extra := graph.NewMask(topo.G)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		extra.FailLink(graph.LinkID(rng.Intn(topo.G.NumLinks())))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spt.Recompute(topo.G, base, graph.Nothing, extra)
	}
}

// BenchmarkSPTRecomputeWorkspace measures the incremental update into
// workspace scratch, the allocation-free variant RTR's phase 2 mirrors.
func BenchmarkSPTRecomputeWorkspace(b *testing.B) {
	topo := topology.GenerateAS("AS3561", 1)
	base := spt.Compute(topo.G, 0, graph.Nothing)
	extra := graph.NewMask(topo.G)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		extra.FailLink(graph.LinkID(rng.Intn(topo.G.NumLinks())))
	}
	ws := spt.GetWorkspace()
	defer ws.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Recompute(topo.G, base, graph.Nothing, extra)
	}
}

// BenchmarkRunAllParallelScaling measures the case runner at 1, 2, and
// GOMAXPROCS workers on the shared dataset's workload — the scaling
// that the truth-tree cache and the per-node clean-tree warm-up
// unlock (both used to serialize or duplicate Dijkstra work).
func BenchmarkRunAllParallelScaling(b *testing.B) {
	w, cases := sharedCases(b)
	workers := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, n := range workers {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim.RunAllN(w, cases, n)
			}
			b.ReportMetric(float64(len(cases))*float64(b.N)/b.Elapsed().Seconds(), "cases/sec")
		})
	}
}

// BenchmarkRunAllBatched measures batched execution against the
// per-case oracle on full-scenario case batches from the two largest
// Table II topologies (AS7018 by nodes, AS3549 by density). A full
// scenario maximizes destination fan-out per (initiator, trigger)
// group, which is exactly the sharing the batched runner exploits:
// one collection walk and one pruned-view SPT per group instead of
// one per destination.
func BenchmarkRunAllBatched(b *testing.B) {
	for _, as := range []string{"AS7018", "AS3549"} {
		w, err := sim.NewWorld(as, 1)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		var cases []*sim.Case
		for len(cases) == 0 {
			sc := failure.RandomScenario(w.Topo, rng)
			rec, irr := sim.CasesFromScenario(w, sc)
			cases = append(append(cases, rec...), irr...)
		}
		for _, variant := range []struct {
			name string
			run  func()
		}{
			{"percase", func() { sim.RunAllPerCase(w, cases, 0) }},
			{"batched", func() { sim.RunAllN(w, cases, 0) }},
		} {
			b.Run(as+"/"+variant.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					variant.run()
				}
				b.ReportMetric(float64(len(cases))*float64(b.N)/b.Elapsed().Seconds(), "cases/sec")
			})
		}
	}
}

// BenchmarkSinglePairRecovery measures one full single-pair recovery
// per op — fresh session, collection, phase-2 route, forwarding,
// grading — for each protocol under every phase-2 engine, on the two
// largest Table II topologies. The frozen (initiator, destination,
// failure) case is identical across engines (the engines are
// output-identical, proven by internal/sim's differential tests), so
// the engine columns time the same work done three ways: full
// (incremental) Dijkstra versus goal-directed A* with the Euclidean or
// landmark heuristic. settled/op reports how many nodes the engine's
// route query settles — the work reduction the goal engines buy.
func BenchmarkSinglePairRecovery(b *testing.B) {
	for _, as := range []string{"AS7018", "AS3549"} {
		for _, eng := range []spt.Engine{spt.EngineDijkstra, spt.EngineAStar, spt.EngineALT} {
			w, err := sim.NewWorldPhase2(as, 1, eng)
			if err != nil {
				b.Fatal(err)
			}
			p, err := sim.NewSinglePair(w, 13)
			if err != nil {
				b.Fatal(err)
			}
			settled := float64(p.SettledNodes())
			for _, proto := range []struct {
				name string
				run  func() error
			}{
				{"rtr", func() error { _, err := p.RTR(); return err }},
				{"fcp", func() error { _, err := p.FCP(); return err }},
				{"mrc", func() error { _, err := p.MRC(); return err }},
			} {
				b.Run(as+"/"+proto.name+"/"+eng.String(), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := proto.run(); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(settled, "settled/op")
				})
			}
		}
	}
}

// BenchmarkIncrementalRecompute measures the Narvaez-style incremental
// SPT update RTR's phase 2 uses, against a batch of removed links.
func BenchmarkIncrementalRecompute(b *testing.B) {
	topo := topology.GenerateAS("AS3561", 1)
	base := spt.Compute(topo.G, 0, graph.Nothing)
	extra := graph.NewMask(topo.G)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		extra.FailLink(graph.LinkID(rng.Intn(topo.G.NumLinks())))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spt.Recompute(topo.G, base, graph.Nothing, extra)
	}
}

// BenchmarkPostFailureTables measures the per-scenario converged-table
// build — cold (one reverse Dijkstra per destination) versus
// incremental (delete-only recompute seeded from the pre-failure
// tables) — on the largest Table II topology by nodes (AS7018) and the
// densest one (AS3549). netsim, the loss experiment, and the Fig. 11
// truth trees all pay this cost once per failure scenario, and the two
// variants produce bit-identical tables.
func BenchmarkPostFailureTables(b *testing.B) {
	for _, as := range []string{"AS7018", "AS3549"} {
		topo := topology.GenerateAS(as, 1)
		pre := routing.ComputeTables(topo)
		rng := rand.New(rand.NewSource(7))
		var scs []*failure.Scenario
		for len(scs) < 16 {
			if sc := failure.RandomScenario(topo, rng); sc.HasFailures() {
				scs = append(scs, sc)
			}
		}
		b.Run(as+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				routing.ComputeTablesUnder(topo, scs[i%len(scs)])
			}
		})
		b.Run(as+"/incremental", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				routing.RecomputeTablesUnder(topo, pre, scs[i%len(scs)])
			}
		})
	}
}

// BenchmarkMRCBuildTrees measures MRC's k*n configuration tree matrix
// — the precomputation cost Enhanced-MRC identifies as MRC's scaling
// burden — cold versus warm-started from the clean routing tables.
func BenchmarkMRCBuildTrees(b *testing.B) {
	topo := topology.GenerateAS("AS7018", 1)
	tables := routing.ComputeTables(topo)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mrc.New(topo, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mrc.NewWarm(topo, 0, tables); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCrossIndexBuild measures the per-topology cross-link
// precomputation on the densest Table II topology.
func BenchmarkCrossIndexBuild(b *testing.B) {
	topo := topology.GenerateAS("AS3549", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topology.BuildCrossIndex(topo)
	}
}

// BenchmarkHeaderCodec measures the packet-header wire codec round
// trip at a typical phase-1 header size.
func BenchmarkHeaderCodec(b *testing.B) {
	h := routing.Header{
		Mode:        routing.ModeCollect,
		RecInit:     42,
		FailedLinks: []graph.LinkID{3, 9, 17, 21, 80},
		CrossLinks:  []graph.LinkID{5, 44},
	}
	buf := make([]byte, 0, h.EncodedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = h.AppendBinary(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := routing.DecodeHeader(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase1Walk measures one constrained collection walk on a
// realistic random failure.
func BenchmarkPhase1Walk(b *testing.B) {
	w, cases := sharedCases(b)
	var c *sim.Case
	for _, cand := range cases {
		if cand.Recoverable {
			c = cand
			break
		}
	}
	if c == nil {
		b.Fatal("no usable case")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := w.RTR.NewSession(c.LV, c.Initiator)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Collect(c.Trigger); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimRun measures the discrete-event packet simulator on
// the worked example: one flow, one second of traffic, full recovery
// timeline.
func BenchmarkNetsimRun(b *testing.B) {
	topo := topology.PaperExample()
	r := core.New(topo, nil)
	tables := routing.ComputeTables(topo)
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	cfg := netsim.Config{
		Flows:   []netsim.Flow{{Src: topology.PaperNode(7), Dst: topology.PaperNode(17), Interval: 5 * time.Millisecond}},
		Horizon: time.Second,
		Timers:  igp.TunedTimers(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := netsim.New(r, tables, sc, cfg).Run()
		if res.Delivered() == 0 {
			b.Fatal("nothing delivered")
		}
	}
}
